package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// onePlat is a single-host platform used by most tests.
func onePlat() *platform.Config {
	return &platform.Config{
		Hosts: []platform.HostConfig{{
			Name: "node0", Cores: 4, GFlops: 1, RAM: "1GiB",
			MemReadMBps: 1000, MemWriteMBps: 1000,
			Disks: []platform.DiskConfig{{
				Name: "disk0", ReadMBps: 100, WriteMBps: 100,
				Capacity: "50GiB", Partition: "scratch",
			}},
		}},
	}
}

// nfsPlat is a client/server pair joined by one link.
func nfsPlat() *platform.Config {
	c := onePlat()
	c.Hosts[0].Disks = nil
	c.Hosts = append(c.Hosts, platform.HostConfig{
		Name: "server", Cores: 4, GFlops: 1, RAM: "1GiB",
		MemReadMBps: 1000, MemWriteMBps: 1000,
		Disks: []platform.DiskConfig{{
			Name: "disk0", ReadMBps: 100, WriteMBps: 100,
			Capacity: "50GiB", Partition: "export",
		}},
	})
	c.Links = []platform.LinkConfig{{Name: "net", MBps: 100}}
	return c
}

func baseDoc() *Doc {
	return &Doc{
		Name:     "t",
		Platform: onePlat(),
		Chunk:    "10MB",
		Workloads: []WorkloadDoc{{
			Name: "app", Host: "node0", Kind: "synthetic",
			Partition: "scratch", Size: "100MB", CPUS: 0.1,
		}},
	}
}

// TestNoChaosMatchesHandCodedRun is the bit-identical-equivalence
// guarantee: a chaos-free scenario reproduces a hand-coded engine run of
// the same setup exactly — same op log, same makespan.
func TestNoChaosMatchesHandCodedRun(t *testing.T) {
	res, err := Run(baseDoc(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}

	sim := engine.NewSimulation()
	plat, err := sim.BuildPlatform(onePlat(), engine.ModeWriteback, 10*units.MB, 0)
	if err != nil {
		t.Fatal(err)
	}
	hr, part := plat.Hosts["node0"], plat.Partitions["scratch"]
	files := workload.SyntheticFiles(0)
	if _, err := part.CreateSized(files[0], 100*units.MB); err != nil {
		t.Fatal(err)
	}
	if err := sim.NS.Place(files[0], part); err != nil {
		t.Fatal(err)
	}
	sim.SpawnApp(hr, 0, "app0", func(a *engine.App) error {
		return workload.RunSynthetic(&workload.EngineRunner{App: a, Part: part}, workload.SyntheticSpec{
			Size: 100 * units.MB, CPU: 0.1, Files: files,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res.Sim.Log, sim.Log) {
		t.Error("scenario op log differs from hand-coded run")
	}
	if res.Makespan != sim.Makespan() {
		t.Errorf("makespan %v != hand-coded %v", res.Makespan, sim.Makespan())
	}
	if !res.Passed {
		t.Errorf("implicit completion assertion failed: %+v", res.Assertions)
	}
}

// TestChaosRunsAreDeterministic runs a faulted scenario twice and demands
// byte-identical reports and identical op logs.
func TestChaosRunsAreDeterministic(t *testing.T) {
	doc := func() *Doc {
		d := baseDoc()
		d.TraceMemS = 0.5
		d.Chaos = &ChaosDoc{
			Seed: 7,
			Events: []EventDoc{
				{AtS: 0.2, Kind: "disk-slow", Target: "disk0", Factor: 0.25, DurS: 1},
				{AtS: 0.5, Kind: "drop-caches", Target: "node0"},
				{AtS: 0.7, Kind: "balloon", Target: "node0", Bytes: "600MiB", DurS: 1},
			},
			Random: &RandomDoc{
				Count: 3, StartS: 0, EndS: 3,
				Menu: []EventDoc{
					{Kind: "disk-slow", Target: "disk0", Factor: 0.5, DurS: 0.3},
					{Kind: "drop-caches", Target: "node0"},
				},
			},
		}
		d.Assertions = []AssertionDoc{
			{Kind: AssertMakespanAbove, Seconds: 0.1},
			{Kind: AssertAllDirtyFlushed, Host: "node0"},
		}
		return d
	}
	r1, err := Run(doc(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(doc(), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	r1.Report(&b1)
	r2.Report(&b2)
	if b1.String() != b2.String() {
		t.Errorf("reports differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	if !reflect.DeepEqual(r1.Sim.Log, r2.Sim.Log) {
		t.Error("op logs differ between identical runs")
	}
	if !reflect.DeepEqual(r1.ChaosLog, r2.ChaosLog) {
		t.Error("chaos logs differ between identical runs")
	}
	if len(r1.ChaosLog) == 0 {
		t.Error("chaos ran but applied log is empty")
	}
	if !r1.Passed {
		t.Errorf("assertions failed:\n%s", b1.String())
	}

	// A different seed must actually change the random draw.
	r3, err := Run(doc(), RunOpts{ChaosSeed: 8, OverrideSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.ChaosLog, r3.ChaosLog) {
		t.Error("seed override did not change the chaos schedule")
	}
}

// TestServerRestartScenario exercises the NFS path: a soft mount errors
// out during a server restart (failed assertion), while a hard mount rides
// it out (completed + no-data-loss).
func TestServerRestartScenario(t *testing.T) {
	doc := func(policy string) *Doc {
		return &Doc{
			Name:     "nfs",
			Platform: nfsPlat(),
			Chunk:    "10MB",
			Mounts: []MountDoc{{
				Client: "node0", Partition: "export", Link: "net",
				ServerCache: true,
				Retry:       &RetryDoc{Policy: policy, TimeoutS: 0.5},
			}},
			Workloads: []WorkloadDoc{{
				Name: "app", Host: "node0", Kind: "synthetic",
				Partition: "export", Size: "100MB", CPUS: 0.1,
			}},
			Chaos: &ChaosDoc{Events: []EventDoc{
				{AtS: 0.5, Kind: "server-restart", Target: "export", DurS: 30},
			}},
		}
	}

	soft := doc("error")
	soft.Assertions = []AssertionDoc{{Kind: AssertFailed, Workload: "app"}}
	rs, err := Run(soft, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Passed {
		var b bytes.Buffer
		rs.Report(&b)
		t.Errorf("soft-mount scenario failed:\n%s", b.String())
	}

	hard := doc("hard")
	hard.Assertions = []AssertionDoc{
		{Kind: AssertCompleted, Workload: "app"},
		{Kind: AssertNoDataLoss, Partition: "export"},
		{Kind: AssertMakespanAbove, Seconds: 30}, // it stalled through the outage
	}
	rh, err := Run(hard, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !rh.Passed {
		var b bytes.Buffer
		rh.Report(&b)
		t.Errorf("hard-mount scenario failed:\n%s", b.String())
	}
	if rh.Makespan <= rs.Makespan {
		t.Errorf("hard mount (%.2fs) should outlast soft mount (%.2fs)", rh.Makespan, rs.Makespan)
	}
}

// TestCgroupScenario squeezes a cgroup mid-run and checks the workload
// still completes with its private cache drained.
func TestCgroupScenario(t *testing.T) {
	d := baseDoc()
	d.Cgroups = []CgroupDoc{{Host: "node0", Name: "g1", Limit: "512MiB"}}
	d.Workloads[0].Cgroup = "g1"
	d.Chaos = &ChaosDoc{Events: []EventDoc{
		{AtS: 0.5, Kind: "cgroup-limit", Target: "g1", Bytes: "256MiB", DurS: 1},
	}}
	d.Assertions = []AssertionDoc{
		{Kind: AssertCompleted, Workload: "app"},
		{Kind: AssertAllDirtyFlushed, Host: "node0"},
	}
	res, err := Run(d, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		var b bytes.Buffer
		res.Report(&b)
		t.Errorf("cgroup scenario failed:\n%s", b.String())
	}
	found := false
	for _, line := range res.ChaosLog {
		if strings.Contains(line, "cgroup-limit g1") {
			found = true
		}
	}
	if !found {
		t.Errorf("cgroup-limit fault not applied: %q", res.ChaosLog)
	}
}

// TestImplicitCompletionCatchesFailures: an unexpected workload error must
// fail the run even without any explicit assertion.
func TestImplicitCompletionCatchesFailures(t *testing.T) {
	d := &Doc{
		Name:     "nfs",
		Platform: nfsPlat(),
		Chunk:    "10MB",
		Mounts: []MountDoc{{
			Client: "node0", Partition: "export", Link: "net",
			Retry: &RetryDoc{Policy: "error", TimeoutS: 0.5},
		}},
		Workloads: []WorkloadDoc{{
			Name: "app", Host: "node0", Kind: "synthetic",
			Partition: "export", Size: "100MB", CPUS: 0.1,
		}},
		Chaos: &ChaosDoc{Events: []EventDoc{
			{AtS: 0.5, Kind: "server-restart", Target: "export", DurS: 30},
		}},
	}
	res, err := Run(d, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Error("run passed despite an unasserted workload failure")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Doc)
		want string
	}{
		{"no name", func(d *Doc) { d.Name = "" }, "missing name"},
		{"no platform", func(d *Doc) { d.Platform = nil }, "needs a platform"},
		{"bad mode", func(d *Doc) { d.Mode = "turbo" }, "unknown mode"},
		{"bad chunk", func(d *Doc) { d.Chunk = "fast" }, "bad chunk"},
		{"bad dirty ratio", func(d *Doc) { d.DirtyRatio = 1.5 }, "dirtyRatio"},
		{"no workloads", func(d *Doc) { d.Workloads = nil }, "no workloads"},
		{"bad workload host", func(d *Doc) { d.Workloads[0].Host = "ghost" }, "unknown host"},
		{"bad workload kind", func(d *Doc) { d.Workloads[0].Kind = "quantum" }, "unknown kind"},
		{"synthetic needs size", func(d *Doc) { d.Workloads[0].Size = "" }, "needs a size"},
		{"unknown cgroup ref", func(d *Doc) { d.Workloads[0].Cgroup = "g9" }, "unknown cgroup"},
		{"dup workload", func(d *Doc) { d.Workloads = append(d.Workloads, d.Workloads[0]) }, "duplicate workload"},
		{"bad cgroup limit", func(d *Doc) {
			d.Cgroups = []CgroupDoc{{Host: "node0", Name: "g", Limit: "0"}}
		}, "bad limit"},
		{"bad chaos kind", func(d *Doc) {
			d.Chaos = &ChaosDoc{Events: []EventDoc{{Kind: "meteor", Target: "x"}}}
		}, "unknown event kind"},
		{"chaos missing target", func(d *Doc) {
			d.Chaos = &ChaosDoc{Events: []EventDoc{{Kind: "disk-slow"}}}
		}, "missing target"},
		{"bad chaos bytes", func(d *Doc) {
			d.Chaos = &ChaosDoc{Events: []EventDoc{{Kind: "balloon", Target: "node0", Bytes: "much", DurS: 1}}}
		}, "bad bytes"},
		{"bad random window", func(d *Doc) {
			d.Chaos = &ChaosDoc{Random: &RandomDoc{Count: 1, StartS: 5, EndS: 1,
				Menu: []EventDoc{{Kind: "drop-caches", Target: "node0"}}}}
		}, "bad window"},
		{"bad assertion kind", func(d *Doc) {
			d.Assertions = []AssertionDoc{{Kind: "vibes-good"}}
		}, "unknown assertion kind"},
		{"assertion unknown host", func(d *Doc) {
			d.Assertions = []AssertionDoc{{Kind: AssertAllDirtyFlushed, Host: "ghost"}}
		}, "unknown host"},
		{"assertion unknown workload", func(d *Doc) {
			d.Assertions = []AssertionDoc{{Kind: AssertCompleted, Workload: "ghost"}}
		}, "unknown workload"},
		{"mount unknown link", func(d *Doc) {
			*d = *baseDoc()
			d.Platform = nfsPlat()
			d.Workloads[0].Partition = "export"
			d.Mounts = []MountDoc{{Client: "node0", Partition: "export", Link: "wifi"}}
		}, "unknown link"},
		{"mount local partition", func(d *Doc) {
			d.Mounts = []MountDoc{{Client: "node0", Partition: "scratch", Link: "net"}}
		}, "local to"},
		{"unmounted remote workload", func(d *Doc) {
			*d = *baseDoc()
			d.Platform = nfsPlat()
			d.Workloads[0].Partition = "export"
		}, "not mounted"},
		{"bad retry policy", func(d *Doc) {
			*d = *baseDoc()
			d.Platform = nfsPlat()
			d.Workloads[0].Partition = "export"
			d.Mounts = []MountDoc{{Client: "node0", Partition: "export", Link: "net",
				Retry: &RetryDoc{Policy: "yolo"}}}
		}, "unknown retry policy"},
	}
	for _, tc := range cases {
		d := baseDoc()
		tc.mut(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestUnknownChaosTargetFailsAtArm: targets resolve against the runner's
// registries, so a typo'd target is a Run-time configuration error.
func TestUnknownChaosTargetFailsAtArm(t *testing.T) {
	d := baseDoc()
	d.Chaos = &ChaosDoc{Events: []EventDoc{{AtS: 1, Kind: "disk-slow", Target: "nope", Factor: 0.5}}}
	if _, err := Run(d, RunOpts{}); err == nil || !strings.Contains(err.Error(), "unknown disk") {
		t.Fatalf("err = %v, want unknown disk", err)
	}
}

// TestLoadReader parses a complete JSON document end to end.
func TestLoadReader(t *testing.T) {
	const js = `{
	  "name": "smoke",
	  "platform": {
	    "hosts": [{"name": "n0", "cores": 2, "gflops": 1, "ram": "1GiB",
	               "memReadMBps": 1000, "memWriteMBps": 1000,
	               "disks": [{"name": "d0", "readMBps": 100, "writeMBps": 100,
	                          "capacity": "10GiB", "partition": "scratch"}]}]
	  },
	  "chunk": "10MB",
	  "workloads": [{"name": "w", "host": "n0", "kind": "synthetic",
	                 "partition": "scratch", "size": "50MB", "cpuS": 0.05}],
	  "chaos": {"events": [{"atS": 0.1, "kind": "drop-caches", "target": "n0"}]},
	  "assertions": [{"kind": "makespan-below", "seconds": 1000}]
	}`
	d, err := LoadReader(strings.NewReader(js), ".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		var b bytes.Buffer
		res.Report(&b)
		t.Errorf("smoke scenario failed:\n%s", b.String())
	}
	if _, err := LoadReader(strings.NewReader(`{"name": "x", "bogusField": 1}`), "."); err == nil {
		t.Error("unknown field accepted")
	}
}
