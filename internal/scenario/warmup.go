package scenario

import (
	"fmt"
	"sort"

	"repro/internal/cgroup"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/snapshot"
)

// applyWarmup warm-starts the main run's caches from the document's warmup
// stanza: either a snapshot file written earlier, or the final cache state
// of a throwaway run of the warmup workloads on the same platform. Called
// before any main-run file or workload setup, while every manager is still
// empty.
func applyWarmup(d *Doc, sim *engine.Simulation, plat *engine.Platform, groups map[string]*cgroup.Group, srvMgrs map[string]*core.Manager) error {
	var snap *snapshot.File
	if d.Warmup.SnapshotFile != "" {
		var err error
		snap, err = snapshot.ReadFile(d.Warmup.SnapshotFile)
		if err != nil {
			return fmt.Errorf("scenario: warmup: %w", err)
		}
	} else {
		warm := &Doc{
			Name:       d.Name + " (warmup)",
			Platform:   d.Platform,
			Mode:       d.Mode,
			Chunk:      d.Chunk,
			DirtyRatio: d.DirtyRatio,
			Mounts:     d.Mounts,
			Cgroups:    d.Cgroups,
			Files:      d.Files,
			Workloads:  d.Warmup.Workloads,
		}
		wres, err := Run(warm, RunOpts{})
		if err != nil {
			return fmt.Errorf("scenario: warmup run: %w", err)
		}
		keys := make([]string, 0, len(wres.WorkloadErrs))
		for k := range wres.WorkloadErrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if werr := wres.WorkloadErrs[k]; werr != nil {
				return fmt.Errorf("scenario: warmup workload %s: %v", k, werr)
			}
		}
		snap, err = wres.snapshotState()
		if err != nil {
			return err
		}
	}
	return restoreSnapshot(sim, plat, groups, srvMgrs, snap)
}

// restoreSnapshot loads a cache snapshot into the simulation's managers:
// backing files are recreated first (so restored dirty blocks always have a
// flush target), then each recorded manager state is restored into its
// still-empty counterpart, rebased to the main run's t=0, with the cache
// counters zeroed so assertions measure the main run only.
func restoreSnapshot(sim *engine.Simulation, plat *engine.Platform, groups map[string]*cgroup.Group, srvMgrs map[string]*core.Manager, snap *snapshot.File) error {
	for _, fm := range snap.Files {
		part, ok := plat.Partitions[fm.Partition]
		if !ok {
			return fmt.Errorf("scenario: warmup: snapshot references unknown partition %q", fm.Partition)
		}
		if _, exists := part.Lookup(fm.Name); !exists {
			if _, err := part.CreateSized(fm.Name, fm.Size); err != nil {
				return fmt.Errorf("scenario: warmup: recreating %s: %w", fm.Name, err)
			}
		}
		if err := sim.NS.Place(fm.Name, part); err != nil {
			return fmt.Errorf("scenario: warmup: %w", err)
		}
	}

	restore := func(kind, name string, mgr *core.Manager, st *core.ManagerState) error {
		// Warm-start carries cache contents, not history: counters belong
		// to the run that produced the snapshot.
		cp := *st
		cp.ReadHits, cp.ReadMisses, cp.FlushedBytes = 0, 0, 0
		cp.ThrottledSec, cp.ForcedEvictions = 0, 0
		if err := mgr.RestoreState(&cp); err != nil {
			return fmt.Errorf("scenario: warmup: restoring %s %q: %w", kind, name, err)
		}
		mgr.ShiftTimes(-snap.SavedAtSimS)
		return nil
	}
	for _, name := range sortedStateKeys(snap.Hosts) {
		hr, ok := plat.Hosts[name]
		if !ok {
			return fmt.Errorf("scenario: warmup: snapshot references unknown host %q", name)
		}
		mp, ok := hr.Model.(engine.ManagerProvider)
		if !ok {
			return fmt.Errorf("scenario: warmup: host %q has no page cache to restore into", name)
		}
		if err := restore("host", name, mp.Manager(), snap.Hosts[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedStateKeys(snap.Cgroups) {
		grp, ok := groups[name]
		if !ok {
			return fmt.Errorf("scenario: warmup: snapshot references unknown cgroup %q", name)
		}
		if err := restore("cgroup", name, grp.Manager(), snap.Cgroups[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedStateKeys(snap.Servers) {
		mgr, ok := srvMgrs[name]
		if !ok {
			return fmt.Errorf("scenario: warmup: snapshot references unknown server cache %q", name)
		}
		if err := restore("server cache", name, mgr, snap.Servers[name]); err != nil {
			return err
		}
	}
	return nil
}

// snapshotState captures the finished run's complete cache state — host,
// cgroup and NFS-server managers plus the backing files their blocks refer
// to — as a snapshot document, in the deterministic order hosts, cgroups,
// servers (names sorted within each).
func (r *Result) snapshotState() (*snapshot.File, error) {
	f := &snapshot.File{Version: snapshot.Version, SavedAtSimS: r.Makespan}
	seen := map[string]bool{}
	addFiles := func(st *core.ManagerState) error {
		for _, l := range st.Lists {
			for _, b := range l.Blocks {
				if seen[b.File] {
					continue
				}
				seen[b.File] = true
				part, err := r.Sim.NS.Locate(b.File)
				if err != nil {
					return fmt.Errorf("scenario: snapshot: %w", err)
				}
				fl, ok := part.Lookup(b.File)
				if !ok {
					return fmt.Errorf("scenario: snapshot: cached file %s missing from %s", b.File, part.Name())
				}
				f.Files = append(f.Files, snapshot.FileMeta{Name: b.File, Partition: part.Name(), Size: fl.Size})
			}
		}
		return nil
	}

	hostNames := make([]string, 0, len(r.Hosts))
	for name := range r.Hosts {
		hostNames = append(hostNames, name)
	}
	sort.Strings(hostNames)
	for _, name := range hostNames {
		mp, ok := r.Hosts[name].Model.(engine.ManagerProvider)
		if !ok {
			continue // cacheless hosts have no state worth carrying
		}
		st := mp.Manager().SnapshotState()
		if f.Hosts == nil {
			f.Hosts = map[string]*core.ManagerState{}
		}
		f.Hosts[name] = st
		if err := addFiles(st); err != nil {
			return nil, err
		}
	}
	groupNames := make([]string, 0, len(r.groups))
	for name := range r.groups {
		groupNames = append(groupNames, name)
	}
	sort.Strings(groupNames)
	for _, name := range groupNames {
		st := r.groups[name].Manager().SnapshotState()
		if f.Cgroups == nil {
			f.Cgroups = map[string]*core.ManagerState{}
		}
		f.Cgroups[name] = st
		if err := addFiles(st); err != nil {
			return nil, err
		}
	}
	srvNames := make([]string, 0, len(r.srvMgrs))
	for name := range r.srvMgrs {
		srvNames = append(srvNames, name)
	}
	sort.Strings(srvNames)
	for _, name := range srvNames {
		st := r.srvMgrs[name].SnapshotState()
		if f.Servers == nil {
			f.Servers = map[string]*core.ManagerState{}
		}
		f.Servers[name] = st
		if err := addFiles(st); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// SnapshotState exposes the finished run's cache state for snapshot-out
// tooling (pcsim -snapshot-out with -scenario).
func (r *Result) SnapshotState() (*snapshot.File, error) { return r.snapshotState() }

func sortedStateKeys(m map[string]*core.ManagerState) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
