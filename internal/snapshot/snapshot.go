// Package snapshot defines the versioned on-disk cache-snapshot format: the
// complete cache state of a simulation — host page caches, per-cgroup
// caches, NFS-server caches (all as core.ManagerState) plus the backing
// files the cached blocks refer to — serialized as JSON. It is written by
// cmd/pcsim (-snapshot-out) and consumed by -snapshot-in and the scenario
// DSL's "warmup": {"snapshotFile": ...} stanza, so a steady state captured
// once can warm-start any number of later runs.
//
// Timestamps inside the ManagerStates are in the saving run's simulated
// clock; SavedAtSimS records that clock so restorers can rebase block times
// to their own t=0 with Manager.ShiftTimes(-SavedAtSimS).
package snapshot

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// Version is the file-format version written by this build; Decode accepts
// it and VersionLegacy. Version 2 added per-device writeback domains inside
// the embedded core.ManagerStates (core.ManagerStateVersionPerDevice);
// version-1 files — whose managers are all single-domain — remain readable
// unchanged.
const (
	Version       = 2
	VersionLegacy = 1
)

// FileMeta describes one backing file the snapshot's cache state refers to.
// Restorers recreate missing files before restoring managers, so restored
// dirty blocks always have a placed backing file to be flushed to.
type FileMeta struct {
	Name      string `json:"name"`
	Partition string `json:"partition"`
	Size      int64  `json:"size"`
}

// File is the on-disk snapshot document.
type File struct {
	Version     int     `json:"version"`
	SavedAtSimS float64 `json:"savedAtSimS"`
	// Hosts maps host name → host page-cache state.
	Hosts map[string]*core.ManagerState `json:"hosts,omitempty"`
	// Cgroups maps cgroup name → that cgroup's private cache state.
	Cgroups map[string]*core.ManagerState `json:"cgroups,omitempty"`
	// Servers maps remote-partition name → NFS-server cache state.
	Servers map[string]*core.ManagerState `json:"servers,omitempty"`
	// Files lists every backing file referenced by the states above.
	Files []FileMeta `json:"files,omitempty"`
}

// Encode writes f as indented JSON.
func Encode(w io.Writer, f *File) error {
	if f.Version == 0 {
		f.Version = Version
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Decode reads a snapshot document, rejecting unknown fields and version
// mismatches.
func Decode(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("snapshot: decoding: %w", err)
	}
	if f.Version != Version && f.Version != VersionLegacy {
		return nil, fmt.Errorf("snapshot: file version %d, this build reads %d and %d", f.Version, Version, VersionLegacy)
	}
	return &f, nil
}

// WriteFile saves f to path.
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := Encode(out, f); err != nil {
		out.Close()
		return fmt.Errorf("snapshot: encoding %s: %w", path, err)
	}
	return out.Close()
}

// ReadFile loads the snapshot at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer in.Close()
	return Decode(in)
}
