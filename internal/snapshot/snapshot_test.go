package snapshot

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	m, err := core.NewManager(core.DefaultConfig(100000))
	if err != nil {
		t.Fatal(err)
	}
	c := fakeCaller{}
	m.WriteToCache(&c, "data", 3000)
	m.AddToCache("data", 2000, 1.5)
	return &File{
		SavedAtSimS: 42.5,
		Hosts:       map[string]*core.ManagerState{"node0": m.SnapshotState()},
		Cgroups:     map[string]*core.ManagerState{"grp": m.SnapshotState()},
		Servers:     map[string]*core.ManagerState{"export": m.SnapshotState()},
		Files:       []FileMeta{{Name: "data", Partition: "scratch", Size: 5000}},
	}
}

// fakeCaller satisfies core.Caller for populating a manager with dirty data.
type fakeCaller struct{ now float64 }

func (f *fakeCaller) Now() float64            { return f.now }
func (f *fakeCaller) DiskRead(string, int64)  {}
func (f *fakeCaller) DiskWrite(string, int64) {}
func (f *fakeCaller) MemRead(int64)           {}
func (f *fakeCaller) MemWrite(int64)          {}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleFile(t)
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if orig.Version != Version {
		t.Fatalf("Encode left version %d, want %d stamped", orig.Version, Version)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round-trip changed the document:\nwrote %+v\nread  %+v", orig, got)
	}
	// The embedded states restore into working managers.
	m, err := core.NewManager(core.DefaultConfig(100000))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreState(got.Hosts["node0"]); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	orig := sampleFile(t)
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("file round-trip changed the document")
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Decode(strings.NewReader(`{"version": 1, "bogus": true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed document accepted")
	}
}
