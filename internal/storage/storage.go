// Package storage implements the simulated filesystem layer: partitions
// with capacities holding files with byte sizes, plus the mapping from file
// paths to the device that backs them. It provides the "storage service"
// role WRENCH plays for the paper's simulator.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/platform"
)

// File is simulated file metadata. Size changes as data is appended by
// write operations.
type File struct {
	Name string
	Size int64
}

// Partition is a fixed-capacity region of a device holding files.
type Partition struct {
	name     string
	capacity int64
	device   *platform.Device
	files    map[string]*File
	used     int64
}

// NewPartition creates a partition of the given capacity (bytes; must be
// positive) backed by dev.
func NewPartition(name string, capacity int64, dev *platform.Device) (*Partition, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: partition %q: capacity must be positive", name)
	}
	if dev == nil {
		return nil, fmt.Errorf("storage: partition %q: nil device", name)
	}
	return &Partition{
		name:     name,
		capacity: capacity,
		device:   dev,
		files:    make(map[string]*File),
	}, nil
}

// Name returns the partition name.
func (p *Partition) Name() string { return p.name }

// Device returns the backing device.
func (p *Partition) Device() *platform.Device { return p.device }

// Capacity returns the partition capacity in bytes.
func (p *Partition) Capacity() int64 { return p.capacity }

// Used returns the bytes currently occupied.
func (p *Partition) Used() int64 { return p.used }

// Free returns the unoccupied bytes.
func (p *Partition) Free() int64 { return p.capacity - p.used }

// Lookup returns the file and whether it exists.
func (p *Partition) Lookup(name string) (*File, bool) {
	f, ok := p.files[name]
	return f, ok
}

// Create adds an empty file. Creating an existing file is an error.
func (p *Partition) Create(name string) (*File, error) {
	if _, ok := p.files[name]; ok {
		return nil, fmt.Errorf("storage: %s: file exists on %s", name, p.name)
	}
	f := &File{Name: name}
	p.files[name] = f
	return f, nil
}

// CreateSized adds a file of the given size (pre-existing input data).
func (p *Partition) CreateSized(name string, size int64) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("storage: %s: negative size", name)
	}
	if size > p.Free() {
		return nil, &ErrNoSpace{Partition: p.name, Need: size, Free: p.Free()}
	}
	f, err := p.Create(name)
	if err != nil {
		return nil, err
	}
	f.Size = size
	p.used += size
	return f, nil
}

// Append grows the file by n bytes, enforcing capacity.
func (p *Partition) Append(name string, n int64) error {
	f, ok := p.files[name]
	if !ok {
		return fmt.Errorf("storage: %s: no such file on %s", name, p.name)
	}
	if n < 0 {
		return fmt.Errorf("storage: %s: negative append", name)
	}
	if n > p.Free() {
		return &ErrNoSpace{Partition: p.name, Need: n, Free: p.Free()}
	}
	f.Size += n
	p.used += n
	return nil
}

// Delete removes the file, freeing its space.
func (p *Partition) Delete(name string) error {
	f, ok := p.files[name]
	if !ok {
		return fmt.Errorf("storage: %s: no such file on %s", name, p.name)
	}
	p.used -= f.Size
	delete(p.files, name)
	return nil
}

// Truncate resets the file to zero bytes, freeing its space.
func (p *Partition) Truncate(name string) error {
	f, ok := p.files[name]
	if !ok {
		return fmt.Errorf("storage: %s: no such file on %s", name, p.name)
	}
	p.used -= f.Size
	f.Size = 0
	return nil
}

// Files returns the file names in sorted order.
func (p *Partition) Files() []string {
	out := make([]string, 0, len(p.files))
	for n := range p.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ErrNoSpace reports a capacity violation.
type ErrNoSpace struct {
	Partition  string
	Need, Free int64
}

func (e *ErrNoSpace) Error() string {
	return fmt.Sprintf("storage: partition %s full: need %d bytes, %d free", e.Partition, e.Need, e.Free)
}

// Namespace maps file names to the partition holding them (one mount table
// per simulation). File names are global, as in the paper's experiments.
type Namespace struct {
	byFile map[string]*Partition
}

// NewNamespace returns an empty mount table.
func NewNamespace() *Namespace {
	return &Namespace{byFile: make(map[string]*Partition)}
}

// Place records that name lives on part (called at file creation).
func (ns *Namespace) Place(name string, part *Partition) error {
	if cur, ok := ns.byFile[name]; ok && cur != part {
		return fmt.Errorf("storage: %s already placed on %s", name, cur.Name())
	}
	ns.byFile[name] = part
	return nil
}

// Locate returns the partition holding name.
func (ns *Namespace) Locate(name string) (*Partition, error) {
	p, ok := ns.byFile[name]
	if !ok {
		return nil, fmt.Errorf("storage: %s: not in namespace", name)
	}
	return p, nil
}

// Forget removes the mapping (file deletion).
func (ns *Namespace) Forget(name string) { delete(ns.byFile, name) }

// DeviceOf resolves the file→partition→device chain to the name of the
// backing device — the bdi key per-device writeback domains group dirty
// data by — or "" when the file is not placed. Placement is stable for a
// file's lifetime (Place rejects moves), so every cached block of one file
// resolves to the same device.
func (ns *Namespace) DeviceOf(name string) string {
	p, ok := ns.byFile[name]
	if !ok {
		return ""
	}
	return p.Device().Name()
}
