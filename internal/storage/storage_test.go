package storage

import (
	"errors"
	"testing"

	"repro/internal/des"
	"repro/internal/fluid"
	"repro/internal/platform"
)

func testPartition(t *testing.T, capacity int64) *Partition {
	t.Helper()
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	dev, err := platform.NewDevice(sys, platform.DeviceSpec{Name: "d", ReadBW: 1, WriteBW: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition("p", capacity, dev)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPartitionValidation(t *testing.T) {
	k := des.NewKernel()
	sys := fluid.NewSystem(k)
	dev, _ := platform.NewDevice(sys, platform.DeviceSpec{Name: "d", ReadBW: 1, WriteBW: 1})
	if _, err := NewPartition("p", 0, dev); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewPartition("p", 100, nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestCreateAppendDelete(t *testing.T) {
	p := testPartition(t, 1000)
	if _, err := p.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create("a"); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if err := p.Append("a", 400); err != nil {
		t.Fatal(err)
	}
	if err := p.Append("a", 300); err != nil {
		t.Fatal(err)
	}
	f, ok := p.Lookup("a")
	if !ok || f.Size != 700 || p.Used() != 700 || p.Free() != 300 {
		t.Fatalf("size=%d used=%d free=%d", f.Size, p.Used(), p.Free())
	}
	if err := p.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 0 {
		t.Fatalf("used = %d after delete", p.Used())
	}
	if err := p.Delete("a"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestCapacityEnforced(t *testing.T) {
	p := testPartition(t, 1000)
	if _, err := p.CreateSized("big", 1500); err == nil {
		t.Fatal("oversized create accepted")
	}
	if _, err := p.CreateSized("a", 800); err != nil {
		t.Fatal(err)
	}
	err := p.Append("a", 300)
	var ns *ErrNoSpace
	if !errors.As(err, &ns) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if ns.Need != 300 || ns.Free != 200 {
		t.Fatalf("ErrNoSpace fields: %+v", ns)
	}
}

func TestNegativeSizesRejected(t *testing.T) {
	p := testPartition(t, 1000)
	if _, err := p.CreateSized("a", -1); err == nil {
		t.Fatal("negative create accepted")
	}
	p.Create("b")
	if err := p.Append("b", -1); err == nil {
		t.Fatal("negative append accepted")
	}
}

func TestTruncate(t *testing.T) {
	p := testPartition(t, 1000)
	p.CreateSized("a", 600)
	if err := p.Truncate("a"); err != nil {
		t.Fatal(err)
	}
	f, _ := p.Lookup("a")
	if f.Size != 0 || p.Used() != 0 {
		t.Fatalf("size=%d used=%d", f.Size, p.Used())
	}
	if err := p.Truncate("missing"); err == nil {
		t.Fatal("truncate of missing file accepted")
	}
}

func TestFilesSorted(t *testing.T) {
	p := testPartition(t, 1000)
	for _, n := range []string{"z", "a", "m"} {
		p.Create(n)
	}
	got := p.Files()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Files() = %v", got)
		}
	}
}

func TestNamespace(t *testing.T) {
	ns := NewNamespace()
	p1 := testPartition(t, 1000)
	p2 := testPartition(t, 1000)
	if err := ns.Place("f", p1); err != nil {
		t.Fatal(err)
	}
	if err := ns.Place("f", p1); err != nil {
		t.Fatal("idempotent place rejected")
	}
	if err := ns.Place("f", p2); err == nil {
		t.Fatal("conflicting place accepted")
	}
	got, err := ns.Locate("f")
	if err != nil || got != p1 {
		t.Fatalf("Locate = %v, %v", got, err)
	}
	ns.Forget("f")
	if _, err := ns.Locate("f"); err == nil {
		t.Fatal("forgotten file still located")
	}
}
