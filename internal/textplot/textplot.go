// Package textplot renders experiment tables and line charts as terminal
// text, so the harness can print figure-shaped output without any plotting
// dependency.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table renders rows with a header, right-aligning numeric-ish columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends a row of a label plus formatted floats.
func (t *Table) AddF(label string, format string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		if math.IsNaN(v) {
			row = append(row, "-")
		} else {
			row = append(row, fmt.Sprintf(format, v))
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	line := func(r []string) {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Series is one line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a simple ASCII scatter/line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	Series []Series
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y-axis anchored at 0, like the paper's figures
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxY <= minY {
		fmt.Fprintln(w, c.Title+" (no data)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = m
			}
		}
	}
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.4g", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.4g", minY)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%8s  %-10.4g%*s\n", "", minX, width-10, fmt.Sprintf("%.4g", maxX))
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	if c.XLabel != "" {
		fmt.Fprintf(w, "%8s  x: %s\n", "", c.XLabel)
	}
	fmt.Fprintf(w, "%8s  %s\n", "", strings.Join(legend, "  "))
}
