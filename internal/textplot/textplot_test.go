package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Header: []string{"name", "v1", "v2"}}
	tb.Add("row-one", "1.0", "200")
	tb.AddF("row-two", "%.1f", 3.14159, 2.0)
	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header/separator broken:\n%s", out)
	}
	if !strings.Contains(lines[3], "3.1") || !strings.Contains(lines[3], "2.0") {
		t.Fatalf("AddF formatting broken:\n%s", out)
	}
}

func TestTableNaN(t *testing.T) {
	tb := &Table{Header: []string{"x", "y"}}
	nan := 0.0
	nan /= nan
	tb.AddF("r", "%.1f", nan)
	var b strings.Builder
	tb.Render(&b)
	if !strings.Contains(b.String(), "-") {
		t.Fatalf("NaN not rendered as dash:\n%s", b.String())
	}
}

func TestChartRender(t *testing.T) {
	ch := &Chart{
		Title:  "test chart",
		Width:  40,
		Height: 8,
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 10, 20, 30}},
			{Name: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{15, 15, 15, 15}},
		},
	}
	var b strings.Builder
	ch.Render(&b)
	out := b.String()
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=flat") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing data markers")
	}
	// The rising series' last point must appear on the top row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max point not on top row:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	ch := &Chart{Title: "empty"}
	var b strings.Builder
	ch.Render(&b)
	if !strings.Contains(b.String(), "no data") {
		t.Fatalf("empty chart output: %q", b.String())
	}
}

func TestChartSinglePoint(t *testing.T) {
	ch := &Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{5}}}}
	var b strings.Builder
	ch.Render(&b) // must not panic or divide by zero
	if !strings.Contains(b.String(), "*") {
		t.Fatalf("single point missing:\n%s", b.String())
	}
}
