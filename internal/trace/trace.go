// Package trace collects simulation observables: memory-profile time series
// (the atop/collectl role in the paper's experiments), per-operation timing
// logs, and per-file cache-content snapshots (Figs 4b, 4c).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// MemPoint is one sample of the host memory state (all bytes).
type MemPoint struct {
	T     float64
	Used  int64 // anonymous + cache
	Cache int64
	Dirty int64
	Anon  int64
}

// MemSeries is a time-ordered memory profile.
type MemSeries struct {
	Points []MemPoint
}

// Add appends a sample (callers sample with non-decreasing time).
func (s *MemSeries) Add(p MemPoint) { s.Points = append(s.Points, p) }

// WriteCSV emits "t,used,cache,dirty,anon" rows.
func (s *MemSeries) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t,used,cache,dirty,anon"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d,%d,%d\n", p.T, p.Used, p.Cache, p.Dirty, p.Anon); err != nil {
			return err
		}
	}
	return nil
}

// At returns the last sample at or before t (zero value before first).
func (s *MemSeries) At(t float64) MemPoint {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return MemPoint{T: t}
	}
	return s.Points[i-1]
}

// MaxUsed returns the peak Used value.
func (s *MemSeries) MaxUsed() int64 {
	var m int64
	for _, p := range s.Points {
		if p.Used > m {
			m = p.Used
		}
	}
	return m
}

// MaxDirty returns the peak Dirty value.
func (s *MemSeries) MaxDirty() int64 {
	var m int64
	for _, p := range s.Points {
		if p.Dirty > m {
			m = p.Dirty
		}
	}
	return m
}

// HitPoint is one sample of a host's cumulative read-hit counters.
type HitPoint struct {
	T         float64
	HitBytes  int64 // cumulative cache-served application read bytes
	MissBytes int64 // cumulative disk-served application read bytes
}

// Ratio returns the cumulative hit ratio at the sample (0 before any read).
func (p HitPoint) Ratio() float64 {
	if p.HitBytes+p.MissBytes == 0 {
		return 0
	}
	return float64(p.HitBytes) / float64(p.HitBytes+p.MissBytes)
}

// HitSeries is a time-ordered read-hit profile — the MemSeries analogue for
// the Manager's hit/miss counters, so ablations can plot hit-ratio
// evolution instead of only the end state.
type HitSeries struct {
	Points []HitPoint
}

// Add appends a sample (callers sample with non-decreasing time).
func (s *HitSeries) Add(p HitPoint) { s.Points = append(s.Points, p) }

// At returns the last sample at or before t (zero value before the first).
func (s *HitSeries) At(t float64) HitPoint {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return HitPoint{T: t}
	}
	return s.Points[i-1]
}

// WriteCSV emits "t,hit_bytes,miss_bytes,hit_ratio" rows.
func (s *HitSeries) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t,hit_bytes,miss_bytes,hit_ratio"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d,%.4f\n", p.T, p.HitBytes, p.MissBytes, p.Ratio()); err != nil {
			return err
		}
	}
	return nil
}

// Op is one timed application operation ("Read 1", "Write 3", ...).
type Op struct {
	Instance int     // application instance index
	Name     string  // e.g. "Read 1"
	Kind     string  // "read", "write" or "compute"
	Start    float64 // seconds
	End      float64
	Bytes    int64
}

// Duration returns End − Start.
func (o Op) Duration() float64 { return o.End - o.Start }

// OpLog is an append-only log of operations.
type OpLog struct {
	Ops []Op
}

// Add appends an operation record.
func (l *OpLog) Add(o Op) { l.Ops = append(l.Ops, o) }

// ByName returns the operations with the given name, in log order.
func (l *OpLog) ByName(name string) []Op {
	var out []Op
	for _, o := range l.Ops {
		if o.Name == name {
			out = append(out, o)
		}
	}
	return out
}

// Duration sums durations of all ops with the given kind for instance i
// (i < 0 matches all instances).
func (l *OpLog) Duration(kind string, instance int) float64 {
	var d float64
	for _, o := range l.Ops {
		if o.Kind == kind && (instance < 0 || o.Instance == instance) {
			d += o.Duration()
		}
	}
	return d
}

// MeanPerInstance returns the mean over instances of each instance's summed
// durations of the given kind (the Exp 2/3 "read time"/"write time" metric).
// Summation follows instance order so results are bit-reproducible (float
// addition is not associative; map order must not leak into metrics).
func (l *OpLog) MeanPerInstance(kind string) float64 {
	sums := map[int]float64{}
	for _, o := range l.Ops {
		if o.Kind == kind {
			sums[o.Instance] += o.Duration()
		}
	}
	if len(sums) == 0 {
		return 0
	}
	ids := make([]int, 0, len(sums))
	for id := range sums {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var total float64
	for _, id := range ids {
		total += sums[id]
	}
	return total / float64(len(sums))
}

// Makespan returns the latest End over all ops.
func (l *OpLog) Makespan() float64 {
	var m float64
	for _, o := range l.Ops {
		if o.End > m {
			m = o.End
		}
	}
	return m
}

// Names returns the distinct op names in first-appearance order.
func (l *OpLog) Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, o := range l.Ops {
		if !seen[o.Name] {
			seen[o.Name] = true
			out = append(out, o.Name)
		}
	}
	return out
}

// Fingerprint hashes the access pattern of the ops in log positions
// [from, to): names, kinds, byte counts and their order, deliberately
// excluding timestamps (two iterations with identical operation sequences
// but slightly jittered timings fingerprint equal — the phase detector
// compares durations separately, under a tolerance). FNV-1a over the
// serialized fields; to is clamped to the log length.
func (l *OpLog) Fingerprint(from, to int) uint64 {
	if from < 0 {
		from = 0
	}
	if to > len(l.Ops) {
		to = len(l.Ops)
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			mix(s[i])
		}
		mix(0)
	}
	mixInt := func(v uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	}
	for i := from; i < to; i++ {
		o := &l.Ops[i]
		mixStr(o.Name)
		mixStr(o.Kind)
		mixInt(uint64(o.Instance))
		mixInt(uint64(o.Bytes))
	}
	return h
}

// WriteCSV emits "instance,name,kind,start,end,bytes" rows.
func (l *OpLog) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "instance,name,kind,start,end,bytes"); err != nil {
		return err
	}
	for _, o := range l.Ops {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%.3f,%.3f,%d\n",
			o.Instance, o.Name, o.Kind, o.Start, o.End, o.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// CacheSnapshot captures per-file cached bytes at a labeled instant
// (Fig 4c: "cache contents after application I/O operations").
type CacheSnapshot struct {
	Label  string
	T      float64
	ByFile map[string]int64
}

// SnapshotLog is an ordered list of cache snapshots.
type SnapshotLog struct {
	Snaps []CacheSnapshot
}

// Add appends a snapshot, copying the map.
func (s *SnapshotLog) Add(label string, t float64, byFile map[string]int64) {
	cp := make(map[string]int64, len(byFile))
	for k, v := range byFile {
		cp[k] = v
	}
	s.Snaps = append(s.Snaps, CacheSnapshot{Label: label, T: t, ByFile: cp})
}

// Files returns all file names appearing in any snapshot, sorted.
func (s *SnapshotLog) Files() []string {
	set := map[string]bool{}
	for _, sn := range s.Snaps {
		for f := range sn.ByFile {
			set[f] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// WriteCSV emits "label,t,file,bytes" rows.
func (s *SnapshotLog) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "label,t,file,bytes"); err != nil {
		return err
	}
	for _, sn := range s.Snaps {
		for _, f := range sortedKeys(sn.ByFile) {
			if _, err := fmt.Fprintf(w, "%s,%.3f,%s,%d\n", sn.Label, sn.T, f, sn.ByFile[f]); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the snapshot log as a compact table (tests, debugging).
func (s *SnapshotLog) String() string {
	var b strings.Builder
	for _, sn := range s.Snaps {
		fmt.Fprintf(&b, "%-10s t=%8.1f ", sn.Label, sn.T)
		for _, f := range sortedKeys(sn.ByFile) {
			fmt.Fprintf(&b, " %s=%d", f, sn.ByFile[f])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
