package trace

import (
	"strings"
	"testing"
)

func TestMemSeriesCSVAndQueries(t *testing.T) {
	s := &MemSeries{}
	s.Add(MemPoint{T: 0, Used: 10, Cache: 5, Dirty: 1, Anon: 5})
	s.Add(MemPoint{T: 1, Used: 20, Cache: 10, Dirty: 8, Anon: 10})
	s.Add(MemPoint{T: 2, Used: 15, Cache: 15, Dirty: 0, Anon: 0})

	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 || lines[0] != "t,used,cache,dirty,anon" {
		t.Fatalf("csv = %q", b.String())
	}
	if s.MaxUsed() != 20 || s.MaxDirty() != 8 {
		t.Fatalf("maxUsed=%d maxDirty=%d", s.MaxUsed(), s.MaxDirty())
	}
	if p := s.At(1.5); p.Used != 20 {
		t.Fatalf("At(1.5) = %+v", p)
	}
	if p := s.At(-1); p.Used != 0 {
		t.Fatalf("At(-1) = %+v", p)
	}
}

func TestOpLogQueries(t *testing.T) {
	l := &OpLog{}
	l.Add(Op{Instance: 0, Name: "Read 1", Kind: "read", Start: 0, End: 10, Bytes: 100})
	l.Add(Op{Instance: 0, Name: "Write 1", Kind: "write", Start: 10, End: 15, Bytes: 100})
	l.Add(Op{Instance: 1, Name: "Read 1", Kind: "read", Start: 0, End: 20, Bytes: 100})
	l.Add(Op{Instance: 1, Name: "Write 1", Kind: "write", Start: 20, End: 27, Bytes: 100})

	if got := l.Duration("read", 0); got != 10 {
		t.Fatalf("read(0) = %v", got)
	}
	if got := l.Duration("read", -1); got != 30 {
		t.Fatalf("read(all) = %v", got)
	}
	// Mean per instance: (10 + 20)/2 = 15 for reads; (5+7)/2 = 6 writes.
	if got := l.MeanPerInstance("read"); got != 15 {
		t.Fatalf("mean read = %v", got)
	}
	if got := l.MeanPerInstance("write"); got != 6 {
		t.Fatalf("mean write = %v", got)
	}
	if got := l.Makespan(); got != 27 {
		t.Fatalf("makespan = %v", got)
	}
	if got := l.ByName("Read 1"); len(got) != 2 {
		t.Fatalf("ByName = %d ops", len(got))
	}
	names := l.Names()
	if len(names) != 2 || names[0] != "Read 1" || names[1] != "Write 1" {
		t.Fatalf("names = %v", names)
	}
	if l.MeanPerInstance("compute") != 0 {
		t.Fatal("missing kind should be 0")
	}
	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "instance,name,kind,start,end,bytes\n") {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestSnapshotLog(t *testing.T) {
	s := &SnapshotLog{}
	src := map[string]int64{"f1": 100, "f2": 50}
	s.Add("Read 1", 1.0, src)
	src["f1"] = 999 // the log must have copied
	s.Add("Write 1", 2.0, map[string]int64{"f3": 10})

	if s.Snaps[0].ByFile["f1"] != 100 {
		t.Fatal("snapshot not copied")
	}
	files := s.Files()
	want := []string{"f1", "f2", "f3"}
	if len(files) != 3 {
		t.Fatalf("files = %v", files)
	}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("files = %v", files)
		}
	}
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Read 1,1.000,f1,100") {
		t.Fatalf("csv = %q", b.String())
	}
	if out := s.String(); !strings.Contains(out, "Write 1") {
		t.Fatalf("String() = %q", out)
	}
}

func TestHitSeries(t *testing.T) {
	s := &HitSeries{}
	s.Add(HitPoint{T: 1, HitBytes: 0, MissBytes: 100})
	s.Add(HitPoint{T: 2, HitBytes: 100, MissBytes: 100})
	if got := s.At(0.5); got.HitBytes != 0 || got.MissBytes != 0 {
		t.Fatalf("At(0.5) = %+v", got)
	}
	if got := s.At(1.5); got.MissBytes != 100 || got.HitBytes != 0 {
		t.Fatalf("At(1.5) = %+v", got)
	}
	if r := s.At(1.5).Ratio(); r != 0 {
		t.Fatalf("cold ratio = %v", r)
	}
	if r := s.At(3).Ratio(); r != 0.5 {
		t.Fatalf("warm ratio = %v", r)
	}
	if (HitPoint{}).Ratio() != 0 {
		t.Fatal("empty ratio not 0")
	}
	var buf strings.Builder
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t,hit_bytes,miss_bytes,hit_ratio\n1.000,0,100,0.0000\n2.000,100,100,0.5000\n"
	if buf.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", buf.String(), want)
	}
}
