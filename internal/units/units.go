// Package units provides byte-size and bandwidth constants, parsing and
// formatting helpers shared across the simulator.
//
// The paper mixes decimal units (file sizes in GB/MB, bandwidths in MBps) and
// binary units (RAM in GiB). Both families are provided; simulation code
// stores all sizes as int64 bytes and all rates as float64 bytes/second.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Decimal (SI) byte sizes.
const (
	KB int64 = 1e3
	MB int64 = 1e6
	GB int64 = 1e9
	TB int64 = 1e12
)

// Binary (IEC) byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// MBps converts a bandwidth expressed in decimal megabytes per second (the
// unit used throughout the paper's Table III) to bytes per second.
func MBps(v float64) float64 { return v * 1e6 }

// GBps converts decimal gigabytes per second to bytes per second.
func GBps(v float64) float64 { return v * 1e9 }

var suffixes = []struct {
	name string
	mult int64
}{
	{"TiB", TiB}, {"GiB", GiB}, {"MiB", MiB}, {"KiB", KiB},
	{"TB", TB}, {"GB", GB}, {"MB", MB}, {"KB", KB},
	{"B", 1},
}

// ParseBytes parses strings such as "100MB", "3 GB", "250GiB" or "4096" into
// a byte count. The match is case-sensitive on the unit to keep the
// decimal/binary distinction unambiguous.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	for _, suf := range suffixes {
		if strings.HasSuffix(t, suf.name) {
			num := strings.TrimSpace(strings.TrimSuffix(t, suf.name))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: cannot parse %q: %v", s, err)
			}
			if v < 0 {
				return 0, fmt.Errorf("units: negative size %q", s)
			}
			return int64(v * float64(suf.mult)), nil
		}
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse %q: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	return v, nil
}

// FormatBytes renders a byte count with a decimal unit suffix, e.g. 3.00GB.
// It is used for human-readable experiment output (the paper reports decimal
// units).
func FormatBytes(n int64) string {
	f := float64(n)
	switch {
	case n >= TB:
		return fmt.Sprintf("%.2fTB", f/float64(TB))
	case n >= GB:
		return fmt.Sprintf("%.2fGB", f/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.2fMB", f/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.2fKB", f/float64(KB))
	}
	return fmt.Sprintf("%dB", n)
}

// FormatSeconds renders a duration in seconds with adaptive precision.
func FormatSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.1fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s <= 0:
		return "0s"
	}
	return fmt.Sprintf("%.1fms", s*1e3)
}
