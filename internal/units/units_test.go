package units

import "testing"

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"100MB", 100 * MB},
		{"3 GB", 3 * GB},
		{"250GiB", 250 * GiB},
		{"1.5GB", 1500 * MB},
		{"4096", 4096},
		{"0", 0},
		{"2TiB", 2 * TiB},
		{"7KB", 7 * KB},
		{"8KiB", 8 * KiB},
		{"  12MiB  ", 12 * MiB},
		{"9TB", 9 * TB},
		{"5B", 5},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "-5MB", "12XB", "GB", "-3"} {
		if v, err := ParseBytes(in); err == nil {
			t.Fatalf("ParseBytes(%q) = %d, want error", in, v)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{3 * GB, "3.00GB"},
		{100 * MB, "100.00MB"},
		{2 * TB, "2.00TB"},
		{512, "512B"},
		{5 * KB, "5.00KB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{125.4, "125.4s"},
		{3.14159, "3.14s"},
		{0.02, "20.0ms"},
		{0, "0s"},
		{-1, "0s"},
	}
	for _, c := range cases {
		if got := FormatSeconds(c.in); got != c.want {
			t.Fatalf("FormatSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBandwidthHelpers(t *testing.T) {
	if MBps(465) != 465e6 {
		t.Fatal("MBps wrong")
	}
	if GBps(1.5) != 1.5e9 {
		t.Fatal("GBps wrong")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int64{GB, 20 * GB, 100 * MB, 3 * KB} {
		s := FormatBytes(n)
		back, err := ParseBytes(s)
		if err != nil || back != n {
			t.Fatalf("round trip %d → %q → %d (%v)", n, s, back, err)
		}
	}
}
