package workflow

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/units"
)

// jsonWorkflow is the on-disk workflow description, in the spirit of the
// WfCommons/WRENCH workflow formats the paper's framework consumes.
//
// Example:
//
//	{
//	  "name": "nighres",
//	  "tasks": [
//	    {"name": "skullstrip", "cpuSeconds": 137,
//	     "inputs": [{"file": "t1_image", "bytes": "295MB"}],
//	     "outputs": [{"file": "skull_strip", "size": "393MB"}]}
//	  ]
//	}
type jsonWorkflow struct {
	Name  string     `json:"name"`
	Tasks []jsonTask `json:"tasks"`
}

type jsonTask struct {
	Name       string    `json:"name"`
	CPUSeconds float64   `json:"cpuSeconds,omitempty"`
	Inputs     []jsonIn  `json:"inputs,omitempty"`
	Outputs    []jsonOut `json:"outputs,omitempty"`
	After      []string  `json:"after,omitempty"`
}

type jsonIn struct {
	File  string `json:"file"`
	Bytes string `json:"bytes,omitempty"` // e.g. "295MB"; empty: whole file
}

type jsonOut struct {
	File string `json:"file"`
	Size string `json:"size"`
}

// LoadJSON parses a workflow description and validates the resulting DAG.
func LoadJSON(r io.Reader) (*Workflow, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var jw jsonWorkflow
	if err := dec.Decode(&jw); err != nil {
		return nil, fmt.Errorf("workflow: parsing: %w", err)
	}
	if jw.Name == "" {
		return nil, fmt.Errorf("workflow: missing name")
	}
	w := New(jw.Name)
	for _, jt := range jw.Tasks {
		t := Task{Name: jt.Name, CPUSeconds: jt.CPUSeconds, After: jt.After}
		for _, in := range jt.Inputs {
			if in.File == "" {
				return nil, fmt.Errorf("workflow %s: task %q: input with empty file", jw.Name, jt.Name)
			}
			bytes := int64(-1)
			if in.Bytes != "" {
				v, err := units.ParseBytes(in.Bytes)
				if err != nil {
					return nil, fmt.Errorf("workflow %s: task %q: %v", jw.Name, jt.Name, err)
				}
				bytes = v
			}
			t.Inputs = append(t.Inputs, FileRef{Name: in.File, Bytes: bytes})
		}
		for _, out := range jt.Outputs {
			if out.File == "" {
				return nil, fmt.Errorf("workflow %s: task %q: output with empty file", jw.Name, jt.Name)
			}
			size, err := units.ParseBytes(out.Size)
			if err != nil {
				return nil, fmt.Errorf("workflow %s: task %q: %v", jw.Name, jt.Name, err)
			}
			t.Outputs = append(t.Outputs, OutFile{Name: out.File, Size: size})
		}
		if err := w.Add(t); err != nil {
			return nil, err
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// WriteJSON serializes the workflow in the LoadJSON format.
func (w *Workflow) WriteJSON(out io.Writer) error {
	jw := jsonWorkflow{Name: w.Name}
	for _, t := range w.Tasks() {
		jt := jsonTask{Name: t.Name, CPUSeconds: t.CPUSeconds, After: t.After}
		for _, in := range t.Inputs {
			ji := jsonIn{File: in.Name}
			if in.Bytes >= 0 {
				ji.Bytes = fmt.Sprintf("%dB", in.Bytes)
			}
			jt.Inputs = append(jt.Inputs, ji)
		}
		for _, o := range t.Outputs {
			jt.Outputs = append(jt.Outputs, jsonOut{File: o.Name, Size: fmt.Sprintf("%dB", o.Size)})
		}
		jw.Tasks = append(jw.Tasks, jt)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(jw)
}
