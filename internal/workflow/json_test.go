package workflow

import (
	"strings"
	"testing"

	"repro/internal/units"
)

const nighresJSON = `{
  "name": "nighres",
  "tasks": [
    {"name": "skullstrip", "cpuSeconds": 137,
     "inputs": [{"file": "t1_image"}],
     "outputs": [{"file": "skull_strip", "size": "393MB"}]},
    {"name": "tissue", "cpuSeconds": 614,
     "inputs": [{"file": "skull_strip", "bytes": "197MB"}],
     "outputs": [{"file": "tissue_class", "size": "1376MB"}]}
  ]
}`

func TestLoadJSONGood(t *testing.T) {
	w, err := LoadJSON(strings.NewReader(nighresJSON))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "nighres" || len(w.Tasks()) != 2 {
		t.Fatalf("workflow = %+v", w)
	}
	tissue := w.Task("tissue")
	if tissue.Inputs[0].Bytes != 197*units.MB {
		t.Fatalf("partial input = %d", tissue.Inputs[0].Bytes)
	}
	skull := w.Task("skullstrip")
	if skull.Inputs[0].Bytes != -1 {
		t.Fatalf("whole-file input = %d", skull.Inputs[0].Bytes)
	}
	if skull.Outputs[0].Size != 393*units.MB {
		t.Fatalf("output = %d", skull.Outputs[0].Size)
	}
	order, err := w.TopoOrder()
	if err != nil || order[0] != "skullstrip" {
		t.Fatalf("order = %v (%v)", order, err)
	}
}

func TestLoadJSONRejections(t *testing.T) {
	cases := []struct{ name, json string }{
		{"garbage", `{`},
		{"no name", `{"tasks":[{"name":"a"}]}`},
		{"unknown field", `{"name":"w","tasks":[{"name":"a"}],"zzz":1}`},
		{"empty input file", `{"name":"w","tasks":[{"name":"a","inputs":[{"file":""}]}]}`},
		{"bad bytes", `{"name":"w","tasks":[{"name":"a","inputs":[{"file":"f","bytes":"??"}]}]}`},
		{"empty output file", `{"name":"w","tasks":[{"name":"a","outputs":[{"file":"","size":"1MB"}]}]}`},
		{"bad size", `{"name":"w","tasks":[{"name":"a","outputs":[{"file":"f","size":"??"}]}]}`},
		{"cycle", `{"name":"w","tasks":[
			{"name":"a","inputs":[{"file":"fb"}],"outputs":[{"file":"fa","size":"1MB"}]},
			{"name":"b","inputs":[{"file":"fa"}],"outputs":[{"file":"fb","size":"1MB"}]}]}`},
		{"no tasks", `{"name":"w","tasks":[]}`},
	}
	for _, c := range cases {
		if _, err := LoadJSON(strings.NewReader(c.json)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w, err := LoadJSON(strings.NewReader(nighresJSON))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := w.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, b.String())
	}
	if len(w2.Tasks()) != len(w.Tasks()) {
		t.Fatal("task count changed")
	}
	if w2.Task("tissue").Inputs[0].Bytes != 197*units.MB {
		t.Fatal("partial input lost")
	}
	if w2.Task("skullstrip").Inputs[0].Bytes != -1 {
		t.Fatal("whole-file input lost")
	}
}
