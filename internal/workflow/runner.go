package workflow

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/engine"
	"repro/internal/storage"
)

// TaskTiming records one executed task.
type TaskTiming struct {
	Name       string
	Start, End float64
}

// RunReport summarizes a workflow execution.
type RunReport struct {
	Timings  map[string]TaskTiming
	Makespan float64
}

// OrderedTimings returns the timings sorted by start time (ties by name).
func (r *RunReport) OrderedTimings() []TaskTiming {
	out := make([]TaskTiming, 0, len(r.Timings))
	for _, t := range r.Timings {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Run executes the workflow on one engine host: every task becomes an
// application process that waits for its dependencies, reads its inputs
// (charging anonymous memory), computes on one core, writes its outputs to
// part, and releases its memory — the task semantics of the paper's
// applications (§III.D). Independent tasks run concurrently, bounded by the
// host's cores for compute and by fluid sharing for I/O.
//
// Source files must already exist on part (see Workflow.SourceFiles). Run
// drives sim.Run itself and returns per-task timings.
func Run(sim *engine.Simulation, host *engine.HostRuntime, part *storage.Partition, w *Workflow) (*RunReport, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	sources, err := w.SourceFiles()
	if err != nil {
		return nil, err
	}
	for _, f := range sources {
		p, err := sim.NS.Locate(f)
		if err != nil {
			return nil, fmt.Errorf("workflow %s: source file %s not on storage: %w", w.Name, f, err)
		}
		if _, ok := p.Lookup(f); !ok {
			return nil, fmt.Errorf("workflow %s: source file %s missing", w.Name, f)
		}
	}
	deps, err := w.deps()
	if err != nil {
		return nil, err
	}
	report := &RunReport{Timings: make(map[string]TaskTiming, len(w.order))}
	done := make(map[string]*des.Future[error], len(w.order))
	for _, name := range w.order {
		done[name] = des.NewFuture[error](sim.K)
	}
	for i, name := range w.order {
		name := name
		t := w.tasks[name]
		sim.SpawnApp(host, i, "wf:"+name, func(a *engine.App) error {
			// Wait for dependencies; abort on upstream failure.
			for _, d := range deps[name] {
				if err := done[d].Get(a.Proc()); err != nil {
					failure := fmt.Errorf("workflow %s: task %s: dependency %s failed: %w", w.Name, name, d, err)
					done[name].Set(failure)
					return nil // reported through the task future
				}
			}
			start := a.Now()
			err := runTask(a, part, t)
			report.Timings[name] = TaskTiming{Name: name, Start: start, End: a.Now()}
			if a.Now() > report.Makespan {
				report.Makespan = a.Now()
			}
			if err != nil {
				done[name].Set(fmt.Errorf("workflow %s: task %s: %w", w.Name, name, err))
				return nil
			}
			done[name].Set(nil)
			return nil
		})
	}
	if err := sim.Run(); err != nil {
		return nil, err
	}
	for _, name := range w.order {
		if err, _ := done[name].Peek(); err != nil {
			return report, err
		}
	}
	return report, nil
}

func runTask(a *engine.App, part *storage.Partition, t *Task) error {
	for _, in := range t.Inputs {
		label := fmt.Sprintf("%s/read %s", t.Name, in.Name)
		if err := a.ReadFileN(in.Name, in.Bytes, label); err != nil {
			return err
		}
	}
	if t.CPUSeconds > 0 {
		a.Compute(t.CPUSeconds, t.Name+"/compute")
	}
	for _, o := range t.Outputs {
		label := fmt.Sprintf("%s/write %s", t.Name, o.Name)
		if err := a.WriteFile(o.Name, o.Size, part, label); err != nil {
			return err
		}
	}
	a.ReleaseTaskMemory()
	return nil
}
