// Package workflow provides the task-DAG abstraction the paper's simulator
// inherits from WRENCH: tasks that read (parts of) files, compute, and
// write files, with dependencies implied by file production and executed
// concurrently on a simulated host. The paper's applications are linear
// chains; this package generalizes them to arbitrary DAGs (fork/join), the
// shape real workflow management systems schedule.
package workflow

import (
	"fmt"
	"sort"
)

// FileRef names a task input and how much of it the task reads
// (Bytes < 0: the whole file — whatever size it has when the task starts).
type FileRef struct {
	Name  string
	Bytes int64
}

// OutFile declares a task output of a fixed size.
type OutFile struct {
	Name string
	Size int64
}

// Task is one node of the DAG.
type Task struct {
	Name       string
	CPUSeconds float64
	Inputs     []FileRef
	Outputs    []OutFile
	// After lists extra control dependencies (task names) beyond the
	// data dependencies implied by input files.
	After []string
}

// Workflow is a validated collection of tasks.
type Workflow struct {
	Name  string
	tasks map[string]*Task
	order []string // insertion order, for deterministic iteration
}

// New returns an empty workflow.
func New(name string) *Workflow {
	return &Workflow{Name: name, tasks: make(map[string]*Task)}
}

// Add registers a task. Task names must be unique.
func (w *Workflow) Add(t Task) error {
	if t.Name == "" {
		return fmt.Errorf("workflow %s: task with empty name", w.Name)
	}
	if _, ok := w.tasks[t.Name]; ok {
		return fmt.Errorf("workflow %s: duplicate task %q", w.Name, t.Name)
	}
	if t.CPUSeconds < 0 {
		return fmt.Errorf("workflow %s: task %q: negative CPU time", w.Name, t.Name)
	}
	for _, o := range t.Outputs {
		if o.Size < 0 {
			return fmt.Errorf("workflow %s: task %q: negative output size for %s", w.Name, t.Name, o.Name)
		}
	}
	cp := t
	w.tasks[t.Name] = &cp
	w.order = append(w.order, t.Name)
	return nil
}

// MustAdd is Add for static workflow construction; it panics on error.
func (w *Workflow) MustAdd(t Task) {
	if err := w.Add(t); err != nil {
		panic(err)
	}
}

// Tasks returns the tasks in insertion order.
func (w *Workflow) Tasks() []*Task {
	out := make([]*Task, 0, len(w.order))
	for _, n := range w.order {
		out = append(out, w.tasks[n])
	}
	return out
}

// Task returns a task by name (nil if absent).
func (w *Workflow) Task(name string) *Task { return w.tasks[name] }

// Producers maps every output file to the task that writes it, failing on
// files produced by two tasks.
func (w *Workflow) Producers() (map[string]string, error) {
	prod := make(map[string]string)
	for _, name := range w.order {
		for _, o := range w.tasks[name].Outputs {
			if prev, ok := prod[o.Name]; ok {
				return nil, fmt.Errorf("workflow %s: file %s produced by both %s and %s",
					w.Name, o.Name, prev, name)
			}
			prod[o.Name] = name
		}
	}
	return prod, nil
}

// SourceFiles returns the input files no task produces (they must exist on
// storage before the run), sorted.
func (w *Workflow) SourceFiles() ([]string, error) {
	prod, err := w.Producers()
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, name := range w.order {
		for _, in := range w.tasks[name].Inputs {
			if _, ok := prod[in.Name]; !ok {
				set[in.Name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out, nil
}

// deps returns each task's dependency set (data + control), validated.
func (w *Workflow) deps() (map[string][]string, error) {
	prod, err := w.Producers()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string, len(w.order))
	for _, name := range w.order {
		t := w.tasks[name]
		seen := map[string]bool{}
		var ds []string
		add := func(d string) {
			if d != "" && d != name && !seen[d] {
				seen[d] = true
				ds = append(ds, d)
			}
		}
		for _, in := range t.Inputs {
			add(prod[in.Name]) // absent producer → source file, no dep
		}
		for _, d := range t.After {
			if _, ok := w.tasks[d]; !ok {
				return nil, fmt.Errorf("workflow %s: task %q depends on unknown task %q", w.Name, name, d)
			}
			add(d)
		}
		out[name] = ds
	}
	return out, nil
}

// TopoOrder returns a dependency-respecting task order, or an error naming
// a cycle member. Ties break by insertion order (deterministic).
func (w *Workflow) TopoOrder() ([]string, error) {
	deps, err := w.deps()
	if err != nil {
		return nil, err
	}
	indeg := make(map[string]int, len(w.order))
	rdeps := make(map[string][]string)
	for _, name := range w.order {
		indeg[name] = len(deps[name])
		for _, d := range deps[name] {
			rdeps[d] = append(rdeps[d], name)
		}
	}
	var ready, out []string
	for _, name := range w.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for _, m := range rdeps[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(out) != len(w.order) {
		for _, name := range w.order {
			if indeg[name] > 0 {
				return nil, fmt.Errorf("workflow %s: dependency cycle involving %q", w.Name, name)
			}
		}
	}
	return out, nil
}

// Validate checks the whole workflow: unique producers, known control
// dependencies, acyclicity.
func (w *Workflow) Validate() error {
	if len(w.order) == 0 {
		return fmt.Errorf("workflow %s: no tasks", w.Name)
	}
	_, err := w.TopoOrder()
	return err
}

// CriticalPathCPU returns the longest chain of CPU seconds through the DAG
// — a lower bound on makespan with infinite cores and free I/O.
func (w *Workflow) CriticalPathCPU() (float64, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return 0, err
	}
	deps, err := w.deps()
	if err != nil {
		return 0, err
	}
	finish := map[string]float64{}
	var longest float64
	for _, name := range order {
		start := 0.0
		for _, d := range deps[name] {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[name] = start + w.tasks[name].CPUSeconds
		if finish[name] > longest {
			longest = finish[name]
		}
	}
	return longest, nil
}
