package workflow

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/platform"
	"repro/internal/storage"
)

func chain(t *testing.T) *Workflow {
	t.Helper()
	w := New("chain")
	w.MustAdd(Task{Name: "t1", CPUSeconds: 1,
		Inputs:  []FileRef{{Name: "in", Bytes: -1}},
		Outputs: []OutFile{{Name: "mid", Size: 100}}})
	w.MustAdd(Task{Name: "t2", CPUSeconds: 1,
		Inputs:  []FileRef{{Name: "mid", Bytes: -1}},
		Outputs: []OutFile{{Name: "out", Size: 100}}})
	return w
}

func TestAddValidation(t *testing.T) {
	w := New("w")
	if err := w.Add(Task{Name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := w.Add(Task{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Task{Name: "a"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := w.Add(Task{Name: "b", CPUSeconds: -1}); err == nil {
		t.Fatal("negative CPU accepted")
	}
	if err := w.Add(Task{Name: "c", Outputs: []OutFile{{Name: "f", Size: -1}}}); err == nil {
		t.Fatal("negative output accepted")
	}
}

func TestTopoOrderChain(t *testing.T) {
	w := chain(t)
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "t1" || order[1] != "t2" {
		t.Fatalf("order = %v", order)
	}
}

func TestCycleDetection(t *testing.T) {
	w := New("cyclic")
	w.MustAdd(Task{Name: "a", Inputs: []FileRef{{Name: "fb", Bytes: -1}}, Outputs: []OutFile{{Name: "fa"}}})
	w.MustAdd(Task{Name: "b", Inputs: []FileRef{{Name: "fa", Bytes: -1}}, Outputs: []OutFile{{Name: "fb"}}})
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateProducerRejected(t *testing.T) {
	w := New("dup")
	w.MustAdd(Task{Name: "a", Outputs: []OutFile{{Name: "f", Size: 1}}})
	w.MustAdd(Task{Name: "b", Outputs: []OutFile{{Name: "f", Size: 1}}})
	if err := w.Validate(); err == nil {
		t.Fatal("duplicate producer accepted")
	}
}

func TestUnknownControlDepRejected(t *testing.T) {
	w := New("ctl")
	w.MustAdd(Task{Name: "a", After: []string{"ghost"}})
	if err := w.Validate(); err == nil {
		t.Fatal("unknown dep accepted")
	}
}

func TestEmptyWorkflowInvalid(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Fatal("empty workflow valid")
	}
}

func TestSourceFiles(t *testing.T) {
	w := chain(t)
	src, err := w.SourceFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(src) != 1 || src[0] != "in" {
		t.Fatalf("sources = %v", src)
	}
}

func TestCriticalPathCPU(t *testing.T) {
	w := New("diamond")
	w.MustAdd(Task{Name: "src", CPUSeconds: 1, Outputs: []OutFile{{Name: "f", Size: 1}}})
	w.MustAdd(Task{Name: "fast", CPUSeconds: 2, Inputs: []FileRef{{Name: "f", Bytes: -1}}, Outputs: []OutFile{{Name: "g1", Size: 1}}})
	w.MustAdd(Task{Name: "slow", CPUSeconds: 10, Inputs: []FileRef{{Name: "f", Bytes: -1}}, Outputs: []OutFile{{Name: "g2", Size: 1}}})
	w.MustAdd(Task{Name: "join", CPUSeconds: 1,
		Inputs: []FileRef{{Name: "g1", Bytes: -1}, {Name: "g2", Bytes: -1}}})
	cp, err := w.CriticalPathCPU()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 12 { // src + slow + join
		t.Fatalf("critical path = %v, want 12", cp)
	}
}

// engineRig builds a small host for execution tests: disk 100 B/s,
// memory 1000 B/s, 4 cores, RAM 100 kB.
func engineRig(t *testing.T) (*engine.Simulation, *engine.HostRuntime, *storage.Partition) {
	t.Helper()
	sim := engine.NewSimulation()
	host, err := sim.AddHost(platform.HostSpec{
		Name: "h", Cores: 4, FlopRate: 1e9, MemoryCap: 100000,
		Memory: platform.DeviceSpec{Name: "h.mem", ReadBW: 1000, WriteBW: 1000},
	}, engine.ModeWriteback, core.DefaultConfig(100000), 100)
	if err != nil {
		t.Fatal(err)
	}
	part, err := host.AddDisk(platform.DeviceSpec{Name: "h.disk", ReadBW: 100, WriteBW: 100}, "scratch", 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return sim, host, part
}

func addSource(t *testing.T, sim *engine.Simulation, part *storage.Partition, name string, size int64) {
	t.Helper()
	if _, err := part.CreateSized(name, size); err != nil {
		t.Fatal(err)
	}
	if err := sim.NS.Place(name, part); err != nil {
		t.Fatal(err)
	}
}

func TestRunChainRespectsDependencies(t *testing.T) {
	sim, host, part := engineRig(t)
	addSource(t, sim, part, "in", 1000)
	w := chain(t)
	rep, err := Run(sim, host, part, w)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := rep.Timings["t1"], rep.Timings["t2"]
	if t2.Start < t1.End {
		t.Fatalf("t2 started at %v before t1 ended at %v", t2.Start, t1.End)
	}
	if rep.Makespan != t2.End {
		t.Fatalf("makespan %v != t2 end %v", rep.Makespan, t2.End)
	}
	ord := rep.OrderedTimings()
	if len(ord) != 2 || ord[0].Name != "t1" {
		t.Fatalf("ordered = %v", ord)
	}
}

func TestRunForkJoinParallelism(t *testing.T) {
	sim, host, part := engineRig(t)
	addSource(t, sim, part, "in", 100)
	w := New("forkjoin")
	w.MustAdd(Task{Name: "prep", CPUSeconds: 1,
		Inputs:  []FileRef{{Name: "in", Bytes: -1}},
		Outputs: []OutFile{{Name: "data", Size: 1000}}})
	for _, n := range []string{"b1", "b2", "b3"} {
		w.MustAdd(Task{Name: n, CPUSeconds: 10,
			Inputs:  []FileRef{{Name: "data", Bytes: -1}},
			Outputs: []OutFile{{Name: n + ".out", Size: 10}}})
	}
	w.MustAdd(Task{Name: "join", CPUSeconds: 1, Inputs: []FileRef{
		{Name: "b1.out", Bytes: -1}, {Name: "b2.out", Bytes: -1}, {Name: "b3.out", Bytes: -1}}})
	rep, err := Run(sim, host, part, w)
	if err != nil {
		t.Fatal(err)
	}
	// The three branches run concurrently (4 cores): their spans overlap.
	b1, b2 := rep.Timings["b1"], rep.Timings["b2"]
	if b2.Start >= b1.End {
		t.Fatalf("branches serialized: b1=%+v b2=%+v", b1, b2)
	}
	// Branch reads of "data" are warm cache hits (written just before):
	// each 1000 B read at memory speed ≈ 1 s, not 10 s.
	for _, n := range []string{"b1", "b2", "b3"} {
		ops := sim.Log.ByName(n + "/read data")
		if len(ops) != 1 {
			t.Fatalf("%s read ops = %d", n, len(ops))
		}
		if ops[0].Duration() > 4 {
			t.Fatalf("%s read took %v, want cache-hit speed", n, ops[0].Duration())
		}
	}
	// Makespan ≈ prep(1 + write) + branch(read + 10 + write) + join.
	if rep.Makespan > 30 {
		t.Fatalf("makespan = %v, branches likely serialized", rep.Makespan)
	}
}

func TestRunFailurePropagates(t *testing.T) {
	sim, host, part := engineRig(t)
	addSource(t, sim, part, "in", 100)
	w := New("failing")
	w.MustAdd(Task{Name: "bad", CPUSeconds: 1,
		Inputs: []FileRef{{Name: "in", Bytes: -1}},
		// Output exceeds the partition: the write must fail.
		Outputs: []OutFile{{Name: "huge", Size: 10_000_000}}})
	w.MustAdd(Task{Name: "downstream", CPUSeconds: 1,
		Inputs: []FileRef{{Name: "huge", Bytes: -1}}})
	_, err := Run(sim, host, part, w)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunMissingSourceFails(t *testing.T) {
	sim, host, part := engineRig(t)
	w := chain(t)
	if _, err := Run(sim, host, part, w); err == nil {
		t.Fatal("missing source accepted")
	}
}

func TestRunPartialInputRead(t *testing.T) {
	sim, host, part := engineRig(t)
	addSource(t, sim, part, "in", 1000)
	w := New("partial")
	w.MustAdd(Task{Name: "t", CPUSeconds: 0,
		Inputs: []FileRef{{Name: "in", Bytes: 300}}})
	if _, err := Run(sim, host, part, w); err != nil {
		t.Fatal(err)
	}
	ops := sim.Log.ByName("t/read in")
	if ops[0].Bytes != 300 {
		t.Fatalf("read %d bytes, want 300", ops[0].Bytes)
	}
	// 300 B at 100 B/s cold.
	if math.Abs(ops[0].Duration()-3) > 1e-6 {
		t.Fatalf("duration = %v", ops[0].Duration())
	}
}

func TestControlOnlyDependency(t *testing.T) {
	sim, host, part := engineRig(t)
	w := New("ctl")
	w.MustAdd(Task{Name: "first", CPUSeconds: 2})
	w.MustAdd(Task{Name: "second", CPUSeconds: 1, After: []string{"first"}})
	rep, err := Run(sim, host, part, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timings["second"].Start < rep.Timings["first"].End {
		t.Fatal("control dependency ignored")
	}
}
