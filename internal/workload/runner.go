package workload

import (
	"repro/internal/engine"
	"repro/internal/pysim"
	"repro/internal/storage"
)

// EngineRunner adapts an engine.App (plus a default output partition) to the
// Runner interface.
type EngineRunner struct {
	App  *engine.App
	Part *storage.Partition
}

var _ Runner = (*EngineRunner)(nil)

// ReadFile implements Runner.
func (r *EngineRunner) ReadFile(file, label string) error {
	return r.App.ReadFile(file, label)
}

// ReadFileN implements Runner.
func (r *EngineRunner) ReadFileN(file string, n int64, label string) error {
	return r.App.ReadFileN(file, n, label)
}

// WriteFile implements Runner, targeting the bound partition.
func (r *EngineRunner) WriteFile(file string, size int64, label string) error {
	return r.App.WriteFile(file, size, r.Part, label)
}

// Compute implements Runner.
func (r *EngineRunner) Compute(seconds float64, label string) {
	r.App.Compute(seconds, label)
}

// ReleaseTaskMemory implements Runner.
func (r *EngineRunner) ReleaseTaskMemory() { r.App.ReleaseTaskMemory() }

// SnapshotCache implements Runner.
func (r *EngineRunner) SnapshotCache(label string) { r.App.SnapshotCache(label) }

// DeleteFile implements Runner.
func (r *EngineRunner) DeleteFile(file string) error { return r.App.DeleteFile(file) }

// IterationDone implements IterationObserver: the engine fast-forwards
// steady iterations when EnableFastForward was armed, and returns 0 (a pure
// no-op) otherwise.
func (r *EngineRunner) IterationDone(done, total int) int {
	return r.App.IterationDone(done, total)
}

// Compile-time check that the pysim prototype satisfies Runner directly.
var _ Runner = (*pysim.Sim)(nil)
