// Package workload defines the applications the paper evaluates with: the
// synthetic three-task pipeline (Table I) and the Nighres cortical
// reconstruction workflow (Table II), plus the concurrent-instance scenarios
// of Exps 2–3. Workloads run against any Runner (the engine in any mode, the
// pysim prototype, or the linuxref-backed engine), which is how one workload
// definition drives every simulator the paper compares.
package workload

import (
	"fmt"

	"repro/internal/units"
)

// Runner abstracts an application's execution substrate.
type Runner interface {
	// ReadFile reads the whole named file.
	ReadFile(file, label string) error
	// ReadFileN reads the first n bytes of the named file.
	ReadFileN(file string, n int64, label string) error
	// WriteFile writes size bytes of the named file.
	WriteFile(file string, size int64, label string) error
	// Compute burns injected CPU seconds.
	Compute(seconds float64, label string)
	// ReleaseTaskMemory frees the application's anonymous memory (called at
	// task end, as the paper's applications do).
	ReleaseTaskMemory()
	// SnapshotCache labels current per-file cache contents (Fig 4c hooks).
	SnapshotCache(label string)
	// DeleteFile removes the named file and invalidates its cached state
	// (iterative workloads overwrite scratch outputs each iteration).
	DeleteFile(file string) error
}

// IterationObserver is implemented by runners whose substrate can
// fast-forward steady-state iterations (EngineRunner over an engine with
// EnableFastForward armed). IterationDone reports that `done` of `total`
// iterations completed and returns how many further iterations the
// substrate skipped analytically; the workload loop must advance past them.
// Runners without the capability simply don't implement it.
type IterationObserver interface {
	IterationDone(done, total int) int
}

// TableI maps synthetic input sizes to measured CPU times (paper Table I).
var TableI = []struct {
	Size int64
	CPU  float64
}{
	{3 * units.GB, 4.4},
	{20 * units.GB, 28},
	{50 * units.GB, 75},
	{75 * units.GB, 110},
	{100 * units.GB, 155},
}

// SyntheticCPU returns the Table I CPU seconds for a given input size,
// interpolating linearly for untabulated sizes (the paper's task CPU time is
// essentially proportional to bytes processed).
func SyntheticCPU(size int64) float64 {
	for _, row := range TableI {
		if row.Size == size {
			return row.CPU
		}
	}
	// Linear fit through the tabulated points (≈1.5 s/GB + ~0).
	return float64(size) / float64(units.GB) * 1.5
}

// SyntheticSpec parameterizes one instance of the synthetic application:
// three single-core sequential tasks; task i reads file i, increments every
// byte (modeled as injected CPU time), and writes file i+1 of equal size.
type SyntheticSpec struct {
	Size     int64     // bytes per file
	CPU      float64   // seconds per task (Table I)
	Files    [4]string // file names; Files[0] is the pre-existing input
	CPUScale float64   // multiplicative jitter (0 → 1.0)
	Snapshot bool      // record Fig 4c cache snapshots after each I/O op
}

// SyntheticFiles returns the conventional file names for an instance.
func SyntheticFiles(instance int) [4]string {
	var f [4]string
	for i := range f {
		f[i] = fmt.Sprintf("app%d_file%d", instance, i+1)
	}
	return f
}

// RunSynthetic executes the synthetic application on r.
func RunSynthetic(r Runner, spec SyntheticSpec) error {
	scale := spec.CPUScale
	if scale == 0 {
		scale = 1
	}
	for task := 0; task < 3; task++ {
		op := fmt.Sprintf("Read %d", task+1)
		if err := r.ReadFile(spec.Files[task], op); err != nil {
			return fmt.Errorf("workload: %s: %w", op, err)
		}
		if spec.Snapshot {
			r.SnapshotCache(op)
		}
		r.Compute(spec.CPU*scale, fmt.Sprintf("Compute %d", task+1))
		op = fmt.Sprintf("Write %d", task+1)
		if err := r.WriteFile(spec.Files[task+1], spec.Size, op); err != nil {
			return fmt.Errorf("workload: %s: %w", op, err)
		}
		if spec.Snapshot {
			r.SnapshotCache(op)
		}
		r.ReleaseTaskMemory()
	}
	return nil
}

// SyntheticOps lists the six I/O operation labels of the synthetic app in
// execution order (the Fig 4a x-axis).
func SyntheticOps() []string {
	return []string{"Read 1", "Write 1", "Read 2", "Write 2", "Read 3", "Write 3"}
}

// IterativeSpec parameterizes the repeated-iteration pipeline: each
// iteration reads the whole input file, computes, and (re)writes a scratch
// output of equal significance — the shape of iterative analysis pipelines
// (e.g. fixed-point solvers re-reading their working set every sweep) whose
// cache behavior converges after a few iterations. The steady prefix is the
// fast-forward target: with phase detection armed, the engine simulates
// iterations until K match and skips the rest analytically.
type IterativeSpec struct {
	// Iterations is the total iteration count N.
	Iterations int
	// Size is the bytes read from Input and written to Output per iteration.
	Size int64
	// CPU is the injected compute seconds per iteration.
	CPU float64
	// Input names the pre-existing input file; Output the per-iteration
	// scratch output, deleted before each rewrite so cache state is periodic.
	Input, Output string
}

// IterativeOps lists the iterative pipeline's per-iteration op labels.
func IterativeOps() []string { return []string{"IterRead", "IterCompute", "IterWrite"} }

// RunIterative executes the repeated-iteration pipeline on r. When r
// implements IterationObserver (the engine with fast-forward armed), the
// loop advances past analytically skipped iterations; otherwise every
// iteration is simulated.
func RunIterative(r Runner, spec IterativeSpec) error {
	if spec.Iterations <= 0 {
		return fmt.Errorf("workload: iterative: Iterations must be positive")
	}
	obs, _ := r.(IterationObserver)
	for i := 0; i < spec.Iterations; {
		if err := r.ReadFile(spec.Input, "IterRead"); err != nil {
			return fmt.Errorf("workload: iterative read: %w", err)
		}
		r.Compute(spec.CPU, "IterCompute")
		if i > 0 {
			// Overwrite semantics: drop the previous iteration's output (and
			// its still-dirty cache blocks) before rewriting, so every
			// iteration leaves the same cache state behind.
			if err := r.DeleteFile(spec.Output); err != nil {
				return fmt.Errorf("workload: iterative delete: %w", err)
			}
		}
		if err := r.WriteFile(spec.Output, spec.Size, "IterWrite"); err != nil {
			return fmt.Errorf("workload: iterative write: %w", err)
		}
		r.ReleaseTaskMemory()
		i++
		if obs != nil {
			i += obs.IterationDone(i, spec.Iterations)
		}
	}
	return nil
}

// NighresStep is one step of the cortical reconstruction workflow
// (Table II). InputFile/InputBytes encode the DAG: each step reads (part of)
// a file produced earlier — region extraction consumes the tissue
// classification output (1376 MB, exact match), cortical reconstruction the
// skull stripping output (393 MB, exact match), and tissue classification a
// 197 MB subset of the skull stripping output (see DESIGN.md).
type NighresStep struct {
	Name       string
	InputFile  string
	InputBytes int64
	OutputFile string
	OutputSize int64
	CPU        float64
}

// NighresInput is the pre-existing 295 MB brain image.
const NighresInput = "t1_image"

// NighresInputSize is the input image size.
const NighresInputSize = 295 * units.MB

// NighresSteps returns the Table II workflow.
func NighresSteps() []NighresStep {
	return []NighresStep{
		{"Skull stripping", NighresInput, 295 * units.MB, "skull_strip", 393 * units.MB, 137},
		{"Tissue classification", "skull_strip", 197 * units.MB, "tissue_class", 1376 * units.MB, 614},
		{"Region extraction", "tissue_class", 1376 * units.MB, "region_extract", 885 * units.MB, 76},
		{"Cortical reconstruction", "skull_strip", 393 * units.MB, "cortical_recon", 786 * units.MB, 272},
	}
}

// NighresOps lists the eight I/O operation labels (the Fig 6 x-axis).
func NighresOps() []string {
	return []string{
		"Read 1", "Write 1", "Read 2", "Write 2",
		"Read 3", "Write 3", "Read 4", "Write 4",
	}
}

// RunNighres executes the Nighres workflow on r.
func RunNighres(r Runner) error {
	for i, step := range NighresSteps() {
		op := fmt.Sprintf("Read %d", i+1)
		if err := r.ReadFileN(step.InputFile, step.InputBytes, op); err != nil {
			return fmt.Errorf("workload: nighres %s: %w", step.Name, err)
		}
		r.Compute(step.CPU, fmt.Sprintf("Compute %d", i+1))
		op = fmt.Sprintf("Write %d", i+1)
		if err := r.WriteFile(step.OutputFile, step.OutputSize, op); err != nil {
			return fmt.Errorf("workload: nighres %s: %w", step.Name, err)
		}
		r.ReleaseTaskMemory()
	}
	return nil
}
