package workload

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/units"
)

// scriptRunner records the call sequence for workflow-shape assertions.
type scriptRunner struct {
	calls    []string
	failAt   string
	released int
}

func (r *scriptRunner) ReadFile(file, label string) error {
	return r.record(fmt.Sprintf("read %s (%s)", file, label), label)
}
func (r *scriptRunner) ReadFileN(file string, n int64, label string) error {
	return r.record(fmt.Sprintf("readN %s %d (%s)", file, n, label), label)
}
func (r *scriptRunner) WriteFile(file string, size int64, label string) error {
	return r.record(fmt.Sprintf("write %s %d (%s)", file, size, label), label)
}
func (r *scriptRunner) Compute(seconds float64, label string) {
	r.calls = append(r.calls, fmt.Sprintf("compute %.1f (%s)", seconds, label))
}
func (r *scriptRunner) ReleaseTaskMemory() {
	r.released++
	r.calls = append(r.calls, "release")
}
func (r *scriptRunner) SnapshotCache(label string) {
	r.calls = append(r.calls, "snapshot "+label)
}
func (r *scriptRunner) DeleteFile(file string) error {
	r.calls = append(r.calls, "delete "+file)
	return nil
}
func (r *scriptRunner) record(s, label string) error {
	r.calls = append(r.calls, s)
	if r.failAt == label {
		return errors.New("injected failure")
	}
	return nil
}

func TestTableIValues(t *testing.T) {
	if len(TableI) != 5 {
		t.Fatalf("Table I rows = %d", len(TableI))
	}
	if TableI[0].Size != 3*units.GB || TableI[0].CPU != 4.4 {
		t.Fatalf("row 0 = %+v", TableI[0])
	}
	if TableI[4].Size != 100*units.GB || TableI[4].CPU != 155 {
		t.Fatalf("row 4 = %+v", TableI[4])
	}
}

func TestSyntheticCPUInterpolation(t *testing.T) {
	if SyntheticCPU(20*units.GB) != 28 {
		t.Fatal("tabulated value not used")
	}
	got := SyntheticCPU(10 * units.GB)
	if got < 10 || got > 20 {
		t.Fatalf("interpolated CPU(10GB) = %v, want ≈15", got)
	}
}

func TestRunSyntheticShape(t *testing.T) {
	r := &scriptRunner{}
	err := RunSynthetic(r, SyntheticSpec{
		Size: 100, CPU: 5, Files: [4]string{"f1", "f2", "f3", "f4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"read f1 (Read 1)", "compute 5.0 (Compute 1)", "write f2 100 (Write 1)", "release",
		"read f2 (Read 2)", "compute 5.0 (Compute 2)", "write f3 100 (Write 2)", "release",
		"read f3 (Read 3)", "compute 5.0 (Compute 3)", "write f4 100 (Write 3)", "release",
	}
	if len(r.calls) != len(want) {
		t.Fatalf("calls = %v", r.calls)
	}
	for i := range want {
		if r.calls[i] != want[i] {
			t.Fatalf("call %d = %q, want %q", i, r.calls[i], want[i])
		}
	}
}

func TestRunSyntheticSnapshots(t *testing.T) {
	r := &scriptRunner{}
	if err := RunSynthetic(r, SyntheticSpec{
		Size: 1, CPU: 1, Files: SyntheticFiles(0), Snapshot: true,
	}); err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, c := range r.calls {
		if c == "snapshot Read 1" || c == "snapshot Write 3" {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("snapshot hooks missing: %v", r.calls)
	}
}

func TestRunSyntheticCPUScale(t *testing.T) {
	r := &scriptRunner{}
	if err := RunSynthetic(r, SyntheticSpec{
		Size: 1, CPU: 10, CPUScale: 1.5, Files: SyntheticFiles(0),
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range r.calls {
		if c == "compute 15.0 (Compute 1)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("CPU scale not applied: %v", r.calls)
	}
}

func TestRunSyntheticPropagatesError(t *testing.T) {
	r := &scriptRunner{failAt: "Write 2"}
	err := RunSynthetic(r, SyntheticSpec{Size: 1, CPU: 1, Files: SyntheticFiles(0)})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if r.released != 1 {
		t.Fatalf("released = %d, want 1 (only task 1 completed)", r.released)
	}
}

func TestSyntheticFilesDistinctPerInstance(t *testing.T) {
	a, b := SyntheticFiles(0), SyntheticFiles(1)
	for i := range a {
		if a[i] == b[i] {
			t.Fatalf("instances share file %q", a[i])
		}
	}
}

func TestNighresTableII(t *testing.T) {
	steps := NighresSteps()
	if len(steps) != 4 {
		t.Fatalf("steps = %d", len(steps))
	}
	// Exact Table II numbers.
	wants := []struct {
		in, out int64
		cpu     float64
	}{
		{295 * units.MB, 393 * units.MB, 137},
		{197 * units.MB, 1376 * units.MB, 614},
		{1376 * units.MB, 885 * units.MB, 76},
		{393 * units.MB, 786 * units.MB, 272},
	}
	for i, w := range wants {
		s := steps[i]
		if s.InputBytes != w.in || s.OutputSize != w.out || s.CPU != w.cpu {
			t.Fatalf("step %d = %+v", i, s)
		}
	}
	// DAG consistency: region extraction reads the tissue output in full;
	// cortical reconstruction reads the skull-strip output in full.
	if steps[2].InputFile != steps[1].OutputFile || steps[2].InputBytes != steps[1].OutputSize {
		t.Fatal("region extraction input mismatch")
	}
	if steps[3].InputFile != steps[0].OutputFile || steps[3].InputBytes != steps[0].OutputSize {
		t.Fatal("cortical reconstruction input mismatch")
	}
	// Tissue classification reads a subset of the skull-strip output.
	if steps[1].InputFile != steps[0].OutputFile || steps[1].InputBytes >= steps[0].OutputSize {
		t.Fatal("tissue classification input mismatch")
	}
}

func TestRunNighresShape(t *testing.T) {
	r := &scriptRunner{}
	if err := RunNighres(r); err != nil {
		t.Fatal(err)
	}
	if r.released != 4 {
		t.Fatalf("released = %d", r.released)
	}
	if r.calls[0] != fmt.Sprintf("readN %s %d (Read 1)", NighresInput, 295*units.MB) {
		t.Fatalf("first call = %q", r.calls[0])
	}
	last := r.calls[len(r.calls)-2]
	if last != fmt.Sprintf("write cortical_recon %d (Write 4)", 786*units.MB) {
		t.Fatalf("last write = %q", last)
	}
}

func TestOpsLists(t *testing.T) {
	if len(SyntheticOps()) != 6 || len(NighresOps()) != 8 {
		t.Fatal("op label lists wrong")
	}
}
